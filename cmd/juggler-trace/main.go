// Command juggler-trace runs one experiment (or a textual packet trace)
// with the cross-layer telemetry sink attached and exports the run's
// observability artifacts:
//
//   - a Chrome/Perfetto trace-event JSON timeline (-trace, open in
//     https://ui.perfetto.dev or chrome://tracing),
//   - a pcapng packet capture (-pcap, open in Wireshark/tshark),
//   - a Prometheus text-format metrics snapshot (-metrics),
//   - a recorded run of replayable "ev" event lines (-record) that
//     juggler-replay and juggler-doctor can re-ingest.
//
// Usage:
//
//	juggler-trace [-experiment fig6] [-quick] [-seed N] \
//	              [-trace out.json] [-pcap out.pcapng] [-metrics out.prom]
//	juggler-trace -replay trace.txt [-trace out.json] ...
//
// Sweeping experiments attach the sink only to the designated traced
// point — the last one — so the exported artifacts describe the last
// point run (the table itself covers the sweep). That also makes -j N
// safe: the other points run telemetry-free on N worker goroutines
// (0 = one per core) and the table and exports stay byte-identical to
// the serial run. A per-layer event summary is printed so smoke tests
// can assert coverage.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"juggler/internal/core"
	"juggler/internal/experiments"
	"juggler/internal/packet"
	"juggler/internal/reasm"
	"juggler/internal/replay"
	"juggler/internal/sim"
	"juggler/internal/sweep"
	"juggler/internal/telemetry"
)

func main() {
	exp := flag.String("experiment", "fig6", "experiment ID to run (see -list)")
	replayPath := flag.String("replay", "", "replay a textual packet trace instead of an experiment")
	quick := flag.Bool("quick", false, "shrink sweeps and durations (~10x faster)")
	seed := flag.Int64("seed", 1, "simulation seed (identical seeds reproduce byte-identical exports)")
	workers := flag.Int("j", 1, "sweep worker goroutines (0 = one per core); table and exports are identical at any width")
	shards := flag.Int("shards", 1, "intra-sim lanes for the sharded receive datapath; table and exports are identical at any count, -j is re-budgeted to keep total goroutines at the -j request")
	backend := flag.String("backend", "seglist", "Juggler reassembly backend: seglist | batchsort | bitmap | ring")
	traceOut := flag.String("trace", "trace.json", "write Perfetto/Chrome trace-event JSON here ('' disables)")
	pcapOut := flag.String("pcap", "", "write a pcapng packet capture here")
	metricsOut := flag.String("metrics", "", "write a Prometheus text-format metrics snapshot here")
	recordOut := flag.String("record", "", "write the recorded run (replayable 'ev' event lines) here")
	eventCap := flag.Int("events", 1<<16, "flight-recorder capacity (events)")
	fabricQueues := flag.Bool("fabric-queues", false, "also record per-enqueue fabric occupancy events")
	stampSample := flag.Int("stamp-sample", 1, "hop-stamp 1-in-N sampling rate (1 = every packet, exact)")
	scalarRx := flag.Bool("scalar-rx", false, "force the per-packet NIC->offload handoff (the batch pipeline's byte-identical reference)")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("  %-16s %s\n", id, experiments.Describe(id))
		}
		return
	}

	bk, err := reasm.ParseKind(*backend)
	if err != nil {
		fmt.Fprintln(os.Stderr, "juggler-trace:", err)
		os.Exit(1)
	}

	opts := telemetry.Options{EventCap: *eventCap, FabricQueues: *fabricQueues}
	var sink *telemetry.Sink

	if *replayPath != "" {
		sink = runReplay(*replayPath, *seed, bk, opts, *stampSample)
	} else {
		o := experiments.Options{Seed: *seed, Quick: *quick,
			Workers: sweep.EffectiveWorkers(*workers, *shards), Shards: *shards, Backend: bk,
			StampSample: *stampSample, ScalarRx: *scalarRx}
		o.AttachTelemetry = func(s *sim.Sim) { sink = telemetry.New(s, opts) }
		t := experiments.Run(*exp, o)
		if t == nil {
			fmt.Fprintf(os.Stderr, "juggler-trace: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		t.Fprint(os.Stdout)
	}
	if sink == nil {
		fmt.Fprintln(os.Stderr, "juggler-trace: the run created no simulation; nothing to export")
		os.Exit(1)
	}

	rec := sink.Recorder
	fmt.Printf("telemetry: %d events from %d layers, %d packets captured\n",
		rec.Total, rec.Layers(), sink.Capture.Len())
	for l := telemetry.LayerFabric; l <= telemetry.LayerHost; l++ {
		if n := rec.ByLayer[l]; n > 0 {
			fmt.Printf("  layer %-8s %d events\n", l, n)
		}
	}

	for _, e := range []struct {
		path  string
		write func(w io.Writer) error
		what  string
	}{
		{*traceOut, sink.WriteTrace, "trace-event JSON"},
		{*pcapOut, sink.WritePcap, "pcapng capture"},
		{*metricsOut, sink.Metrics.WriteProm, "metrics snapshot"},
		{*recordOut, rec.WriteEvents, "recorded run"},
	} {
		if e.path == "" {
			continue
		}
		if err := export(e.path, e.write); err != nil {
			fmt.Fprintln(os.Stderr, "juggler-trace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s to %s\n", e.what, e.path)
	}
}

// runReplay feeds a parsed packet trace through a standalone Juggler with
// telemetry attached (the juggler-replay apparatus, export-oriented).
func runReplay(path string, seed int64, bk reasm.Kind, opts telemetry.Options, stampSample int) *telemetry.Sink {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "juggler-trace:", err)
		os.Exit(1)
	}
	defer f.Close()
	tr, err := replay.Parse(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "juggler-trace:", err)
		os.Exit(1)
	}
	if len(tr.Packets) == 0 {
		fmt.Fprintln(os.Stderr, "juggler-trace: empty trace")
		os.Exit(1)
	}
	s := sim.New(seed)
	packet.AttachStampSampler(s, stampSample)
	sink := telemetry.New(s, opts)
	iface := sink.Iface("replay")
	jcfg := core.DefaultConfig()
	jcfg.Backend = bk
	j := core.New(s, jcfg, func(seg *packet.Segment) {})
	// The sampling verdict is taken here, in trace order — replay has no
	// sender NIC, so schedule time is the wire-TX equivalent.
	sampler := packet.StampSamplerFromSim(s)
	for _, tp := range tr.Packets {
		tp := tp
		sampler.Apply(&tp.Pkt)
		s.Schedule(tp.At, func() {
			sink.CapturePacket(iface, true, &tp.Pkt)
			j.Receive(&tp.Pkt)
		})
	}
	tick := sim.NewTicker(s, 5*time.Microsecond, j.PollComplete)
	tick.Start()
	s.RunFor(tr.Last() + 10*time.Millisecond)
	tick.Stop()
	return sink
}

// export writes one telemetry artifact to path.
func export(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
