package juggler

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"juggler/internal/experiments"
	"juggler/internal/sim"
	"juggler/internal/telemetry"
)

// TestNoStrayRandomness enforces the repo's bit-reproducibility contract:
// every stochastic decision must draw from the per-run source handed out
// by sim.Rand(). Constructing a new rand source or calling the global
// math/rand functions anywhere else would silently break same-seed
// reproducibility — the property the chaos checker, the experiment tables
// and the CLI repro workflow all depend on.
//
// Non-test sources outside internal/sim may mention *rand.Rand as a type
// (components receive the shared source as a parameter or field); what
// they may not do is mint or seed one, call the global process-wide
// functions, or import math/rand/v2 (whose global state is per-process,
// not per-simulation).
func TestNoStrayRandomness(t *testing.T) {
	// Call sites only: each pattern requires the opening parenthesis, so
	// type references like `rng *rand.Rand` stay legal.
	forbidden := regexp.MustCompile(`\brand\.(NewSource|New|Seed|Int63n|Int63|Int31n|Int31|Intn|Int|Uint32|Uint64|Float64|Float32|Perm|Shuffle|ExpFloat64|NormFloat64)\s*\(`)
	v2import := regexp.MustCompile(`"math/rand/v2"`)

	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch {
			case d.Name() == ".git":
				return filepath.SkipDir
			case filepath.ToSlash(path) == "internal/sim":
				// The one place allowed to own a rand source: sim.New seeds
				// it, sim.Rand hands it out.
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(src), "\n") {
			if m := forbidden.FindString(line); m != "" {
				t.Errorf("%s:%d: %q — draw from sim.Rand() instead of minting or calling global math/rand state", path, i+1, m)
			}
			if v2import.MatchString(line) {
				t.Errorf("%s:%d: math/rand/v2 import — its global state is per-process, not per-simulation; use sim.Rand()", path, i+1)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTelemetryExportsDeterministic is the end-to-end counterpart of the
// randomness lint above: two identically-seeded runs through the public
// apparatus must export byte-identical telemetry artifacts — the Perfetto
// trace, the pcapng capture, and the metrics snapshot. Any hidden
// nondeterminism (map iteration in an exporter, wall-clock timestamps, a
// stray rand source) shows up here as a byte diff.
func TestTelemetryExportsDeterministic(t *testing.T) {
	run := func() (trace, pcap, prom []byte) {
		p := NewReorderPair(ReorderPairConfig{
			Seed:         7,
			ReorderDelay: 250 * time.Microsecond,
			DropProb:     0.001,
			Telemetry:    true,
		})
		p.AddBulkFlow(0)
		p.Run(10 * time.Millisecond)
		var tb, pb, mb bytes.Buffer
		if err := p.WriteTrace(&tb); err != nil {
			t.Fatalf("WriteTrace: %v", err)
		}
		if err := p.WritePcap(&pb); err != nil {
			t.Fatalf("WritePcap: %v", err)
		}
		if err := p.WriteMetrics(&mb); err != nil {
			t.Fatalf("WriteMetrics: %v", err)
		}
		return tb.Bytes(), pb.Bytes(), mb.Bytes()
	}

	t1, p1, m1 := run()
	t2, p2, m2 := run()
	if len(t1) == 0 || len(p1) == 0 || len(m1) == 0 {
		t.Fatalf("empty export: trace=%d pcap=%d metrics=%d bytes", len(t1), len(p1), len(m1))
	}
	if !bytes.Equal(t1, t2) {
		t.Errorf("trace-event JSON differs between identically-seeded runs (%d vs %d bytes)", len(t1), len(t2))
	}
	if !bytes.Equal(p1, p2) {
		t.Errorf("pcapng capture differs between identically-seeded runs (%d vs %d bytes)", len(p1), len(p2))
	}
	if !bytes.Equal(m1, m2) {
		t.Errorf("metrics snapshot differs between identically-seeded runs (%d vs %d bytes)", len(m1), len(m2))
	}
}

// TestParallelSweepDeterministic is the internal/sweep contract checked end
// to end: running a sweeping experiment on 8 workers must produce the same
// bytes as the serial run — the rendered table AND the telemetry artifacts
// exported from the designated traced point. fig6 is the probe because it
// both sweeps (so points really interleave under -j) and attaches the
// telemetry sink. Two seeds guard against a coincidentally stable schedule.
func TestParallelSweepDeterministic(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		run := func(workers int) (table, trace, pcap, prom []byte) {
			t.Helper()
			var sink *telemetry.Sink
			o := experiments.Options{Seed: seed, Quick: true, Workers: workers}
			o.AttachTelemetry = func(s *sim.Sim) {
				sink = telemetry.New(s, telemetry.Options{EventCap: 1 << 14})
			}
			tbl := experiments.Run("fig6", o)
			if tbl == nil {
				t.Fatalf("experiment fig6 not registered")
			}
			var tb bytes.Buffer
			tbl.Fprint(&tb)
			if sink == nil {
				t.Fatalf("no telemetry sink attached (workers=%d)", workers)
			}
			var tr, pc, mb bytes.Buffer
			if err := sink.WriteTrace(&tr); err != nil {
				t.Fatalf("WriteTrace: %v", err)
			}
			if err := sink.WritePcap(&pc); err != nil {
				t.Fatalf("WritePcap: %v", err)
			}
			if err := sink.Metrics.WriteProm(&mb); err != nil {
				t.Fatalf("WriteProm: %v", err)
			}
			return tb.Bytes(), tr.Bytes(), pc.Bytes(), mb.Bytes()
		}

		st, str, spc, spm := run(1)
		pt, ptr, ppc, ppm := run(8)
		if len(st) == 0 || len(str) == 0 || len(spc) == 0 || len(spm) == 0 {
			t.Fatalf("seed %d: empty serial output: table=%d trace=%d pcap=%d metrics=%d bytes",
				seed, len(st), len(str), len(spc), len(spm))
		}
		if !bytes.Equal(st, pt) {
			t.Errorf("seed %d: table differs between -j 1 and -j 8:\n--- serial ---\n%s--- parallel ---\n%s", seed, st, pt)
		}
		if !bytes.Equal(str, ptr) {
			t.Errorf("seed %d: trace-event JSON differs between -j 1 and -j 8 (%d vs %d bytes)", seed, len(str), len(ptr))
		}
		if !bytes.Equal(spc, ppc) {
			t.Errorf("seed %d: pcapng capture differs between -j 1 and -j 8 (%d vs %d bytes)", seed, len(spc), len(ppc))
		}
		if !bytes.Equal(spm, ppm) {
			t.Errorf("seed %d: metrics snapshot differs between -j 1 and -j 8 (%d vs %d bytes)", seed, len(spm), len(ppm))
		}
	}
}
