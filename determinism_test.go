package juggler

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestNoStrayRandomness enforces the repo's bit-reproducibility contract:
// every stochastic decision must draw from the per-run source handed out
// by sim.Rand(). Constructing a new rand source or calling the global
// math/rand functions anywhere else would silently break same-seed
// reproducibility — the property the chaos checker, the experiment tables
// and the CLI repro workflow all depend on.
//
// Non-test sources outside internal/sim may mention *rand.Rand as a type
// (components receive the shared source as a parameter or field); what
// they may not do is mint or seed one, call the global process-wide
// functions, or import math/rand/v2 (whose global state is per-process,
// not per-simulation).
func TestNoStrayRandomness(t *testing.T) {
	// Call sites only: each pattern requires the opening parenthesis, so
	// type references like `rng *rand.Rand` stay legal.
	forbidden := regexp.MustCompile(`\brand\.(NewSource|New|Seed|Int63n|Int63|Int31n|Int31|Intn|Int|Uint32|Uint64|Float64|Float32|Perm|Shuffle|ExpFloat64|NormFloat64)\s*\(`)
	v2import := regexp.MustCompile(`"math/rand/v2"`)

	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch {
			case d.Name() == ".git":
				return filepath.SkipDir
			case filepath.ToSlash(path) == "internal/sim":
				// The one place allowed to own a rand source: sim.New seeds
				// it, sim.Rand hands it out.
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(src), "\n") {
			if m := forbidden.FindString(line); m != "" {
				t.Errorf("%s:%d: %q — draw from sim.Rand() instead of minting or calling global math/rand state", path, i+1, m)
			}
			if v2import.MatchString(line) {
				t.Errorf("%s:%d: math/rand/v2 import — its global state is per-process, not per-simulation; use sim.Rand()", path, i+1)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
