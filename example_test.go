package juggler_test

import (
	"fmt"
	"time"

	"juggler"
)

// The headline comparison: identical traffic and reordering, two stacks.
func ExampleNewReorderPair() {
	run := func(stack juggler.Stack) juggler.Rate {
		tun := juggler.DefaultTuning(juggler.Rate10G)
		tun.OfoTimeout = 700 * time.Microsecond // cover the 500us reordering
		p := juggler.NewReorderPair(juggler.ReorderPairConfig{
			Rate:         juggler.Rate10G,
			ReorderDelay: 500 * time.Microsecond,
			Receiver:     stack,
			Tuning:       tun,
			Seed:         42,
		})
		f := p.AddBulkFlow(0)
		p.Run(150 * time.Millisecond)
		return f.Throughput()
	}
	jug, van := run(juggler.StackJuggler), run(juggler.StackVanilla)
	fmt.Println("juggler beats vanilla under reordering:", jug > 4*van)
	fmt.Println("juggler near line rate:", jug > juggler.Rate10G*8/10)
	// Output:
	// juggler beats vanilla under reordering: true
	// juggler near line rate: true
}

// Tuning follows the paper's rule of thumb: inseq_timeout is the time one
// 64KB batch takes at line rate.
func ExampleDefaultTuning() {
	t10 := juggler.DefaultTuning(juggler.Rate10G)
	t40 := juggler.DefaultTuning(juggler.Rate40G)
	fmt.Println(t10.InseqTimeout.Round(time.Microsecond))
	fmt.Println(t40.InseqTimeout.Round(time.Microsecond))
	// Output:
	// 52µs
	// 13µs
}

// Per-packet spraying across a Clos is safe behind a Juggler receiver:
// the reordering it induces never reaches TCP.
func ExampleNewCluster() {
	c := juggler.NewCluster(juggler.ClusterConfig{
		LB:    juggler.PerPacket,
		Stack: juggler.StackJuggler,
		Seed:  7,
	})
	a, b := c.AddHost(0), c.AddHost(1)
	f := c.ConnectBulk(a, b, juggler.FlowOptions{})
	c.Run(20 * time.Millisecond)
	fmt.Println("bytes flowed:", f.Delivered() > 0)
	fmt.Println("reordering hidden from TCP:", f.OOOFraction() < 0.05)
	// Output:
	// bytes flowed: true
	// reordering hidden from TCP: true
}

// Every figure of the paper's evaluation regenerates by ID.
func ExampleRunExperiment() {
	rep := juggler.RunExperiment("latency", 1, true)
	fmt.Println(rep.ID, "rows:", len(rep.Rows))
	// The two rows are the vanilla and Juggler receivers; their medians
	// are identical on in-order traffic.
	fmt.Println("identical medians:", rep.Rows[0][1] == rep.Rows[1][1])
	// Output:
	// latency rows: 2
	// identical medians: true
}
