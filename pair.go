package juggler

import (
	"io"
	"time"

	"juggler/internal/adapt"
	"juggler/internal/nic"
	"juggler/internal/packet"
	"juggler/internal/sim"
	"juggler/internal/stats"
	"juggler/internal/tcp"
	"juggler/internal/telemetry"
	"juggler/internal/testbed"
	"juggler/internal/units"
	"juggler/internal/workload"
)

// ReorderPairConfig configures the two-host reordering apparatus
// (Figure 11): each packet is hashed uniformly at random onto one of two
// paths, the second delayed by ReorderDelay.
type ReorderPairConfig struct {
	// Rate is the link/NIC speed (default 10G, as in the paper's NetFPGA
	// testbed).
	Rate Rate
	// ReorderDelay is the extra delay of the second path (tau); 0 yields
	// perfectly in-order delivery.
	ReorderDelay time.Duration
	// DropProb drops packets uniformly at random before the receiver's
	// offload layer (the §5.2.1 loss injection).
	DropProb float64
	// Receiver selects the receiver's offload stack (default
	// StackJuggler).
	Receiver Stack
	// Tuning tunes Juggler when Receiver is StackJuggler (zero fields take
	// rate-appropriate defaults).
	Tuning Tuning
	// Seed drives all randomness (default 1).
	Seed int64
	// Telemetry attaches a full telemetry sink (metrics, flight recorder,
	// packet capture) before the topology is built, so every layer is
	// instrumented. Exports are read back with WriteTrace / WritePcap /
	// WriteMetrics.
	Telemetry bool
	// StampSample is the 1-in-N hop-stamp sampling rate: the sender NIC
	// stamps every Nth wire packet and the rest skip forensic hop
	// stamping, latency attribution and per-packet decision records.
	// 0 or 1 stamps every packet (the exact default).
	StampSample int
	// ScalarRx forces the pre-batch per-packet NIC->offload handoff on
	// both hosts. The batched receive pipeline (the default) is required
	// to produce byte-identical runs to this reference; differential
	// tests flip it to prove that.
	ScalarRx bool
}

// ReorderPair is a running two-host simulation.
type ReorderPair struct {
	s  *sim.Sim
	tb *testbed.NetFPGAPair

	flows []*Flow
	rpcs  []*RPCStream
}

// NewReorderPair builds the apparatus.
func NewReorderPair(cfg ReorderPairConfig) *ReorderPair {
	if cfg.Rate == 0 {
		cfg.Rate = Rate10G
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Tuning == (Tuning{}) {
		cfg.Tuning = DefaultTuning(cfg.Rate)
	}
	s := sim.New(cfg.Seed)
	packet.AttachStampSampler(s, cfg.StampSample)
	if cfg.ScalarRx {
		nic.AttachRXOverrides(s, nic.RXOverrides{ScalarRx: true})
	}
	if cfg.Telemetry {
		telemetry.New(s, telemetry.Options{})
	}
	rcvCfg := testbed.DefaultHostConfig(cfg.Receiver.kind())
	rcvCfg.Juggler = cfg.Tuning.coreConfig()
	if cfg.Tuning.Adapt {
		ac := adapt.DefaultConfig()
		rcvCfg.Adapt = &ac
	}
	tb := testbed.NewNetFPGAPair(s, units.BitRate(cfg.Rate), cfg.ReorderDelay,
		cfg.DropProb, testbed.DefaultHostConfig(testbed.OffloadVanilla), rcvCfg)
	tb.Receiver.CPU.ResetWindows()
	return &ReorderPair{s: s, tb: tb}
}

// Flow is one TCP connection's sending endpoint with receive-side
// accounting.
type Flow struct {
	snd *tcp.Sender
	rcv *tcp.Receiver

	lastBytes int64
	lastAt    sim.Time
	s         *sim.Sim
}

// AddBulkFlow opens an endless bulk TCP flow from sender to receiver,
// optionally paced (0 = unpaced). The flow starts transmitting
// immediately.
func (p *ReorderPair) AddBulkFlow(pace Rate) *Flow {
	snd, rcv := testbed.Connect(p.tb.Sender, p.tb.Receiver, tcp.SenderConfig{
		PaceRate: units.BitRate(pace),
	})
	snd.SetInfinite()
	snd.MaybeSend()
	f := &Flow{snd: snd, rcv: rcv, s: p.s}
	p.flows = append(p.flows, f)
	return f
}

// RPCStream sends fixed-boundary messages over one persistent connection
// and records completion latency.
type RPCStream struct {
	stream *workload.RPCStream
	snd    *tcp.Sender
	lat    *stats.Sampler
}

// AddRPCStream opens a persistent connection for RPC traffic.
func (p *ReorderPair) AddRPCStream() *RPCStream {
	snd, rcv := testbed.Connect(p.tb.Sender, p.tb.Receiver, tcp.SenderConfig{})
	lat := stats.NewSampler(1024)
	r := &RPCStream{stream: workload.NewRPCStream(p.s, snd, rcv, lat), snd: snd, lat: lat}
	p.rpcs = append(p.rpcs, r)
	return r
}

// Send enqueues one RPC of the given size now.
func (r *RPCStream) Send(size int) { r.stream.Send(size) }

// OnComplete registers a callback fired once per finished RPC (for
// closed-loop clients).
func (r *RPCStream) OnComplete(fn func()) { r.stream.OnComplete = fn }

// PrioritizeTail marks the stream's packets high priority whenever fewer
// than threshold bytes remain to be sent — pFabric-style SRPT
// approximation with two priority levels (§2.1). Pass 0 to restore static
// low priority.
func (r *RPCStream) PrioritizeTail(threshold int) {
	if threshold <= 0 {
		r.snd.Mark = nil
		return
	}
	r.snd.Mark = func() packet.Priority {
		if r.snd.RemainingToSend() < int64(threshold) {
			return packet.PrioHigh
		}
		return packet.PrioLow
	}
}

// Completed returns the number of finished RPCs.
func (r *RPCStream) Completed() int64 { return r.stream.Completed }

// LatencyMedian returns the median completion time.
func (r *RPCStream) LatencyMedian() time.Duration {
	return time.Duration(r.lat.Median() * float64(time.Second))
}

// LatencyP99 returns the 99th-percentile completion time.
func (r *RPCStream) LatencyP99() time.Duration {
	return time.Duration(r.lat.P99() * float64(time.Second))
}

// Run advances the simulation by d.
func (p *ReorderPair) Run(d time.Duration) { p.s.RunFor(d) }

// Now returns the current simulation time since start.
func (p *ReorderPair) Now() time.Duration { return time.Duration(p.s.Now()) }

// At schedules fn to run after delay d of simulated time.
func (p *ReorderPair) At(d time.Duration, fn func()) { p.s.Schedule(d, fn) }

// Delivered returns the flow's cumulative in-order bytes at the receiver.
func (f *Flow) Delivered() int64 { return f.rcv.Delivered() }

// Throughput returns the average rate since the previous Throughput call
// (or since the start).
func (f *Flow) Throughput() Rate {
	now := f.s.Now()
	cur := f.rcv.Delivered()
	d := now.Sub(f.lastAt)
	got := Rate(units.Throughput(cur-f.lastBytes, d))
	f.lastBytes, f.lastAt = cur, now
	return got
}

// OOOFraction returns the fraction of segments that reached TCP out of
// order (the reordering Juggler failed, or declined, to hide).
func (f *Flow) OOOFraction() float64 {
	if f.rcv.Stats.SegmentsIn == 0 {
		return 0
	}
	return float64(f.rcv.Stats.OOOSegments) / float64(f.rcv.Stats.SegmentsIn)
}

// Retransmits returns the sender's retransmitted packet count.
func (f *Flow) Retransmits() int64 { return f.snd.Stats.RetransPackets }

// EnableTrace attaches a bounded telemetry flight recorder (last n events)
// to the run and rebinds the receiver's Juggler instances to it, so core
// events are recorded even when full telemetry was not requested at
// construction. No-op for stacks without Juggler instances.
func (p *ReorderPair) EnableTrace(n int) {
	k := telemetry.FromSim(p.s)
	if k == nil {
		k = telemetry.New(p.s, telemetry.Options{EventCap: n})
	}
	for _, j := range p.tb.Receiver.Jugglers {
		j.Instrument(k)
	}
}

// DumpTrace writes the recorded event timeline to w and returns a per-kind
// summary line.
func (p *ReorderPair) DumpTrace(w io.Writer) string {
	k := telemetry.FromSim(p.s)
	if k == nil {
		return "(no events)"
	}
	k.Recorder.Dump(w)
	return k.Recorder.Summary()
}

// WriteTrace writes the run's flight recorder as Perfetto/Chrome
// trace-event JSON. No-op unless telemetry is enabled.
func (p *ReorderPair) WriteTrace(w io.Writer) error {
	return telemetry.FromSim(p.s).WriteTrace(w)
}

// WritePcap writes the run's packet capture as a pcapng file.
func (p *ReorderPair) WritePcap(w io.Writer) error {
	return telemetry.FromSim(p.s).WritePcap(w)
}

// WriteMetrics writes the run's metric snapshot in Prometheus text format.
func (p *ReorderPair) WriteMetrics(w io.Writer) error {
	return telemetry.FromSim(p.s).Reg().WriteProm(w)
}

// ReceiverTimeouts returns the receiver's current inseq/ofo timeouts —
// with Tuning.Adapt these are the controller's live values, not the
// configured starting point. Zeros for stacks without Juggler instances.
func (p *ReorderPair) ReceiverTimeouts() (inseq, ofo time.Duration) {
	js := p.tb.Receiver.Jugglers
	if len(js) == 0 {
		return 0, 0
	}
	c := js[0].Config()
	return c.InseqTimeout, c.OfoTimeout
}

// ReceiverStats summarizes the receiving host.
func (p *ReorderPair) ReceiverStats() HostStats {
	h := p.tb.Receiver
	st := HostStats{
		RXCoreUtil:      h.CPU.RX.Utilization(),
		AppCoreUtil:     h.CPU.App.Utilization(),
		ActiveFlows:     h.JugglerActiveLen(),
		DroppedSegments: h.DroppedSegs,
	}
	c := h.OffloadCounters()
	if c.Segments > 0 {
		st.BatchingMTUs = float64(c.Packets) / float64(c.Segments)
	}
	for _, f := range p.flows {
		st.SegmentsIn += f.rcv.Stats.SegmentsIn
		st.OOOSegments += f.rcv.Stats.OOOSegments
		st.AcksSent += f.rcv.Stats.AcksSent
	}
	for _, r := range p.rpcs {
		_ = r
	}
	return st
}
