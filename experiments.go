package juggler

import (
	"encoding/csv"
	"io"
	"time"

	"juggler/internal/experiments"
	"juggler/internal/reasm"
	"juggler/internal/sweep"
)

// Report is one experiment's regenerated table: the same rows/series the
// paper plots for that figure.
type Report struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Fprint renders the report as an aligned text table.
func (r *Report) Fprint(w io.Writer) {
	t := experiments.Table{ID: r.ID, Title: r.Title, Columns: r.Columns,
		Rows: r.Rows, Notes: r.Notes}
	t.Fprint(w)
}

// WriteCSV emits the report as CSV (header row first).
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Columns); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Experiments lists the available experiment IDs (fig1, fig9, fig10,
// fig12..fig16, fig18, fig20, latency, lossofo, abl-*).
func Experiments() []string { return experiments.IDs() }

// DescribeExperiment returns an experiment's one-line description.
func DescribeExperiment(id string) string { return experiments.Describe(id) }

// RunConfig tunes an experiment run beyond the defaults.
type RunConfig struct {
	// Seed drives all randomness; 0 means 1. Identical seeds reproduce
	// bit-identical reports at any worker count.
	Seed int64
	// Quick shrinks sweeps and durations ~10x for smoke runs.
	Quick bool
	// Workers is the sweep fan-out width: parameter points of a sweeping
	// experiment run on this many goroutines (0 or 1 = serial). The report
	// is byte-identical to the serial run at any width.
	Workers int
	// Shards is the intra-sim lane count: the sharded receive datapath
	// (the shardedrx experiment) spreads its logical RX queues over this
	// many real goroutines under a conservative virtual-time barrier
	// (0 or 1 = serial, the byte-exact reference). Reports are
	// byte-identical at any lane count. When Shards > 1 the sweep width
	// is re-budgeted so total goroutines stay at the Workers request
	// (sweep.EffectiveWorkers) — `-j 8 -shards 4` runs 2 sweep workers
	// of 4 lanes each, not 32 goroutines.
	Shards int
	// Backend names the reassembly backend Juggler instances use:
	// "seglist" (default, also ""), "batchsort", "bitmap", or "ring".
	// Unknown names panic at configuration time.
	Backend string
	// Adapt attaches the internal/adapt controller to every receiver:
	// timeouts become starting points that self-tune against the live
	// reordering estimate.
	Adapt bool
	// Inseq/Ofo override the experiment's starting inseq/ofo timeouts
	// (0 keeps each experiment's own provisioning).
	Inseq time.Duration
	Ofo   time.Duration
	// StampSample is the 1-in-N hop-stamp sampling rate: the sender NIC
	// stamps every Nth wire packet; the rest skip forensic stamping and
	// per-packet decision records. 0 or 1 stamps every packet (exact).
	StampSample int
}

// RunExperiment regenerates one table/figure of the paper's evaluation.
// quick shrinks sweeps and durations ~10x for smoke runs. It returns nil
// for unknown IDs.
func RunExperiment(id string, seed int64, quick bool) *Report {
	return RunExperimentCfg(id, RunConfig{Seed: seed, Quick: quick})
}

// RunExperimentCfg is RunExperiment with the full configuration surface
// (notably Workers for parallel sweeps). It returns nil for unknown IDs.
func RunExperimentCfg(id string, cfg RunConfig) *Report {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	bk, err := reasm.ParseKind(cfg.Backend)
	if err != nil {
		panic("juggler: " + err.Error())
	}
	w := cfg.Workers
	if cfg.Shards > 1 && w > 1 {
		// Shared goroutine budget: the Workers request is the total, so
		// the sweep width shrinks to leave room for each point's lanes.
		// (0/1 stays serial: its meaning is "no sweep fan-out", not a
		// budget to divide.)
		w = sweep.EffectiveWorkers(w, cfg.Shards)
	}
	t := experiments.Run(id, experiments.Options{
		Seed: cfg.Seed, Quick: cfg.Quick, Workers: w,
		Shards: cfg.Shards, Backend: bk,
		Adapt: cfg.Adapt, Inseq: cfg.Inseq, Ofo: cfg.Ofo,
		StampSample: cfg.StampSample,
	})
	if t == nil {
		return nil
	}
	return &Report{ID: t.ID, Title: t.Title, Columns: t.Columns,
		Rows: t.Rows, Notes: t.Notes}
}
