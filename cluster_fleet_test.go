package juggler

import (
	"bytes"
	"testing"
	"time"

	"juggler/internal/telemetry/fleet"
)

// runClusterWithExports builds a per-packet-sprayed cluster with fleet
// telemetry and every exporter on, runs it, and returns the bytes of
// each export. The cluster's closed loop is inherently serial, so
// "determinism coverage" here means two fresh same-seed runs — the
// property every -j sweep worker relies on when it commits results by
// point index.
func runClusterWithExports(t *testing.T) (trace, pcap, metrics, fleetJSON []byte) {
	t.Helper()
	c := NewCluster(ClusterConfig{
		LB: PerPacket, Stack: StackJuggler, Seed: 11,
		Telemetry: true,
		Fleet:     &fleet.Config{Cadence: 500 * time.Microsecond, SLO: time.Millisecond},
	})
	a, b := c.AddHost(0), c.AddHost(1)
	d := c.AddHost(1)
	c.ConnectBulk(a, b, FlowOptions{})
	rpc := c.ConnectRPC(a, d, FlowOptions{})
	c.At(time.Millisecond, func() { rpc.Send(64 << 10) })
	c.At(2*time.Millisecond, func() { rpc.Send(64 << 10) })
	c.Run(8 * time.Millisecond)

	var tb, pb, mb, fb bytes.Buffer
	if err := c.WriteTrace(&tb); err != nil {
		t.Fatal(err)
	}
	if err := c.WritePcap(&pb); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteMetrics(&mb); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFleetReport(&fb); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), pb.Bytes(), mb.Bytes(), fb.Bytes()
}

// TestClusterExportsDeterministic is the exporter determinism gate:
// same seed, fresh sims, byte-identical WriteTrace / WritePcap /
// WriteMetrics / fleet report output.
func TestClusterExportsDeterministic(t *testing.T) {
	t1, p1, m1, f1 := runClusterWithExports(t)
	t2, p2, m2, f2 := runClusterWithExports(t)
	for _, cmp := range []struct {
		name string
		a, b []byte
	}{
		{"trace", t1, t2}, {"pcap", p1, p2}, {"metrics", m1, m2}, {"fleet", f1, f2},
	} {
		if len(cmp.a) == 0 {
			t.Fatalf("%s export is empty", cmp.name)
		}
		if !bytes.Equal(cmp.a, cmp.b) {
			t.Fatalf("%s export differs between same-seed runs", cmp.name)
		}
	}
}

// TestClusterFleetReport checks the cluster wiring end to end: probes
// sampled on the cadence, deliveries observed, RPC completions in the
// FCT sketch, schema-valid JSON.
func TestClusterFleetReport(t *testing.T) {
	_, _, _, fj := runClusterWithExports(t)
	violations, err := fleet.Validate(fj)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("fleet report schema violations: %v", violations)
	}

	c := NewCluster(ClusterConfig{
		LB: PerPacket, Stack: StackJuggler, Seed: 11,
		Fleet: &fleet.Config{},
	})
	a, b := c.AddHost(0), c.AddHost(1)
	c.ConnectBulk(a, b, FlowOptions{})
	rpc := c.ConnectRPC(a, b, FlowOptions{})
	c.At(time.Millisecond, func() { rpc.Send(32 << 10) })
	c.Run(6 * time.Millisecond)
	r := c.FleetReport()
	if r == nil {
		t.Fatal("FleetReport returned nil with Fleet configured")
	}
	if len(r.Hosts) != 2 {
		t.Fatalf("want 2 host rows, got %d", len(r.Hosts))
	}
	var recv *fleet.HostHealth
	for i := range r.Hosts {
		if r.Hosts[i].Name == "h1-1" {
			recv = &r.Hosts[i]
		}
	}
	if recv == nil {
		t.Fatal("receiver host missing from report")
	}
	if recv.Deliveries == 0 || recv.Samples == 0 {
		t.Fatalf("receiver saw no deliveries/samples: %+v", recv)
	}
	if recv.SojournP99Ns <= 0 || recv.SojournP99Ns < recv.SojournP50Ns {
		t.Fatalf("tail quantiles inconsistent: p50 %d p99 %d", recv.SojournP50Ns, recv.SojournP99Ns)
	}
	if r.FCTCount == 0 {
		t.Fatal("RPC completion did not reach the FCT sketch")
	}
	if r.Fleet.Samples == 0 || r.Fleet.PktsPerSec == 0 {
		t.Fatalf("fleet rollup empty: %+v", r.Fleet)
	}
	if len(r.TopFlowsByBytes) == 0 {
		t.Fatal("no flow heavy hitters in cluster report")
	}

	// No fleet config -> no report, and exporters stay nil-safe.
	c2 := NewCluster(ClusterConfig{Seed: 3})
	if c2.FleetReport() != nil {
		t.Fatal("FleetReport should be nil without ClusterConfig.Fleet")
	}
	var sink bytes.Buffer
	if err := c2.WriteFleetReport(&sink); err != nil || sink.Len() != 0 {
		t.Fatal("WriteFleetReport should be a no-op without ClusterConfig.Fleet")
	}
}
