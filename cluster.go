package juggler

import (
	"io"
	"time"

	"juggler/internal/bwguard"
	"juggler/internal/fabric"
	"juggler/internal/lb"
	"juggler/internal/sim"
	"juggler/internal/stats"
	"juggler/internal/tcp"
	"juggler/internal/telemetry"
	"juggler/internal/telemetry/fleet"
	"juggler/internal/testbed"
	"juggler/internal/units"
	"juggler/internal/workload"
)

// ClusterConfig describes a two-stage Clos datacenter (Figure 19): ToRs at
// the leaf, spines above, each ToR connected to every spine.
type ClusterConfig struct {
	// ToRs and Spines give the switch counts (defaults 2 and 2).
	ToRs, Spines int
	// LinkRate applies to hosts and fabric alike (default 40G).
	LinkRate Rate
	// LB is the ToR-uplink load-balancing policy (default ECMP).
	LB LoadBalancing
	// QueueBytes bounds each fabric queue (default 2MB, 0 keeps default;
	// use -1 for unbounded).
	QueueBytes int
	// ECNThresholdBytes enables DCTCP-style marking above the threshold
	// (0 = no marking).
	ECNThresholdBytes int
	// PriorityQueues gives fabric ports two-level strict-priority queues
	// (required for bandwidth guarantees).
	PriorityQueues bool
	// Stack selects every host's offload implementation (default
	// StackJuggler).
	Stack Stack
	// Tuning tunes Juggler (zero = rate-appropriate defaults).
	Tuning Tuning
	// Seed drives all randomness (default 1).
	Seed int64
	// Telemetry enables the cross-layer observability sink; read the
	// exports back with WriteTrace / WritePcap / WriteMetrics.
	Telemetry bool
	// Fleet, when non-nil, attaches the fleet telemetry aggregator
	// (internal/telemetry/fleet): every host added afterwards gets a
	// rollup probe sampled on the fleet cadence, RPC completions feed
	// the fleet FCT sketch, and FleetReport returns the merged
	// cluster-health report. Use &fleet.Config{} for defaults.
	Fleet *fleet.Config
}

// Cluster is a running Clos simulation.
type Cluster struct {
	s     *sim.Sim
	tb    *testbed.ClosTestbed
	cfg   ClusterConfig
	fleet *fleet.Aggregator
}

// Node is one host in a Cluster.
type Node struct {
	host *testbed.Host
	c    *Cluster
}

// NewCluster builds the fabric; attach hosts with AddHost.
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.ToRs == 0 {
		cfg.ToRs = 2
	}
	if cfg.Spines == 0 {
		cfg.Spines = 2
	}
	if cfg.LinkRate == 0 {
		cfg.LinkRate = Rate40G
	}
	if cfg.QueueBytes == 0 {
		cfg.QueueBytes = 2 * units.MB
	}
	if cfg.QueueBytes < 0 {
		cfg.QueueBytes = 0 // unbounded
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Tuning == (Tuning{}) {
		cfg.Tuning = DefaultTuning(cfg.LinkRate)
	}
	s := sim.New(cfg.Seed)
	if cfg.Telemetry {
		telemetry.New(s, telemetry.Options{})
	}
	var picker fabric.Picker
	switch cfg.LB {
	case PerPacket:
		picker = lb.NewPerPacket(s, true)
	case PerTSO:
		picker = &lb.PerTSO{}
	case Flowlet:
		picker = lb.NewFlowlet(s, 100*time.Microsecond)
	default:
		picker = &lb.ECMP{}
	}
	tb := testbed.NewClosTestbed(s, fabric.ClosConfig{
		NumToRs: cfg.ToRs, NumSpines: cfg.Spines,
		LinkRate:   units.BitRate(cfg.LinkRate),
		Prop:       200 * time.Nanosecond,
		QueueBytes: cfg.QueueBytes, MarkBytes: cfg.ECNThresholdBytes,
		Priority: cfg.PriorityQueues,
		UplinkLB: picker,
	})
	c := &Cluster{s: s, tb: tb, cfg: cfg}
	if cfg.Fleet != nil {
		c.fleet = fleet.NewAggregator(*cfg.Fleet)
	}
	return c
}

// AddHost attaches a host under ToR tor.
func (c *Cluster) AddHost(tor int) *Node {
	hostCfg := testbed.DefaultHostConfig(c.cfg.Stack.kind())
	hostCfg.LinkRate = units.BitRate(c.cfg.LinkRate)
	hostCfg.Juggler = c.cfg.Tuning.coreConfig()
	h := c.tb.AddHost(tor, hostCfg)
	if c.fleet != nil {
		attachFleetProbe(c.fleet, c.s, h, tor)
	}
	return &Node{host: h, c: c}
}

// attachFleetProbe registers a serial host with the fleet aggregator:
// the delivery tap feeds the sojourn sketch and flow tracker, and the
// cadence ticker samples the stack's gauges and counters.
func attachFleetProbe(agg *fleet.Aggregator, s *sim.Sim, h *testbed.Host, tor int) {
	lane := agg.AddHost(h.Name, tor, 1).Lane(0)
	h.DeliverTap = lane.ObserveDelivery
	lane.SetSample(func(cn *fleet.Counters) {
		cn.BufferedBytes = int64(h.JugglerBufferedBytes())
		cn.SegPoolLive = h.SegPoolLive()
		cn.TableFlows = int64(h.JugglerTableLen())
		cn.Retunes = h.AdaptRetunes()
		st := h.JugglerStats()
		cn.Retransmissions = st.Retransmissions
		cn.OfoHolds = st.FlushOfoTimeout
		cn.Drops = h.DroppedSegs
	})
	lane.Start(s)
}

// FlowOptions tune one connection.
type FlowOptions struct {
	// Pace caps the flow's send rate (0 = unpaced).
	Pace Rate
	// ECN enables DCTCP-style congestion reaction (pair with the
	// cluster's ECNThresholdBytes).
	ECN bool
	// MaxWindow caps the congestion window in bytes (0 = 4MB default).
	MaxWindow int
}

// ConnectBulk opens an endless bulk flow from n to dst and starts it.
func (c *Cluster) ConnectBulk(n, dst *Node, opt FlowOptions) *Flow {
	snd, rcv := testbed.Connect(n.host, dst.host, tcp.SenderConfig{
		PaceRate: units.BitRate(opt.Pace), ECN: opt.ECN, MaxCwnd: opt.MaxWindow,
	})
	snd.SetInfinite()
	snd.MaybeSend()
	return &Flow{snd: snd, rcv: rcv, s: c.s}
}

// ConnectRPC opens a persistent connection for RPC traffic.
func (c *Cluster) ConnectRPC(n, dst *Node, opt FlowOptions) *RPCStream {
	snd, rcv := testbed.Connect(n.host, dst.host, tcp.SenderConfig{
		PaceRate: units.BitRate(opt.Pace), ECN: opt.ECN, MaxCwnd: opt.MaxWindow,
	})
	lat := stats.NewSampler(4096)
	rs := &RPCStream{stream: workload.NewRPCStream(c.s, snd, rcv, lat), snd: snd, lat: lat}
	if c.fleet != nil {
		rs.stream.OnLatency = func(d time.Duration) { c.fleet.ObserveFCT(int64(d)) }
	}
	return rs
}

// AddBackground injects Poisson cross traffic at the given average rate
// from a synthetic host under fromToR to a sink under toToR.
func (c *Cluster) AddBackground(fromToR, toToR int, rate Rate) {
	c.tb.AddBackgroundPair(fromToR, toToR, units.BitRate(rate))
}

// Guarantee attaches the §2.1 dynamic-priority controller to a flow: the
// sender marks packets high priority with an adaptive probability so the
// flow converges to the target rate. The cluster must use PriorityQueues,
// and the receiving stack must be reordering resilient for the guarantee
// to hold (the point of Figure 18).
func (c *Cluster) Guarantee(f *Flow, target Rate) {
	bwguard.Attach(c.s, bwguard.DefaultConfig(
		units.BitRate(target), units.BitRate(c.cfg.LinkRate)), f.snd)
}

// Run advances the simulation by d.
func (c *Cluster) Run(d time.Duration) { c.s.RunFor(d) }

// Now returns the simulated time since start.
func (c *Cluster) Now() time.Duration { return time.Duration(c.s.Now()) }

// At schedules fn after d of simulated time.
func (c *Cluster) At(d time.Duration, fn func()) { c.s.Schedule(d, fn) }

// WriteTrace writes the run's flight recorder as Perfetto/Chrome
// trace-event JSON. No-op unless ClusterConfig.Telemetry is set.
func (c *Cluster) WriteTrace(w io.Writer) error {
	return telemetry.FromSim(c.s).WriteTrace(w)
}

// WritePcap writes the run's packet capture as a pcapng file.
func (c *Cluster) WritePcap(w io.Writer) error {
	return telemetry.FromSim(c.s).WritePcap(w)
}

// WriteMetrics writes the run's metric snapshot in Prometheus text format.
func (c *Cluster) WriteMetrics(w io.Writer) error {
	return telemetry.FromSim(c.s).Reg().WriteProm(w)
}

// FleetReport stops fleet sampling, takes a final sample of every
// probe, and returns the merged cluster-health report. Returns nil
// unless ClusterConfig.Fleet was set.
func (c *Cluster) FleetReport() *fleet.Report {
	if c.fleet == nil {
		return nil
	}
	c.fleet.StopAll()
	return c.fleet.Report(c.Now())
}

// WriteFleetReport writes the fleet report as schema-validated,
// byte-stable JSON. No-op without ClusterConfig.Fleet.
func (c *Cluster) WriteFleetReport(w io.Writer) error {
	r := c.FleetReport()
	if r == nil {
		return nil
	}
	return r.WriteJSON(w)
}

// Stats summarizes a node's receive path.
func (n *Node) Stats() HostStats {
	h := n.host
	st := HostStats{
		RXCoreUtil:      h.CPU.RX.Utilization(),
		AppCoreUtil:     h.CPU.App.Utilization(),
		ActiveFlows:     h.JugglerActiveLen(),
		DroppedSegments: h.DroppedSegs,
	}
	c := h.OffloadCounters()
	if c.Segments > 0 {
		st.BatchingMTUs = float64(c.Packets) / float64(c.Segments)
	}
	return st
}

// ResetCPUWindow restarts the node's CPU utilization measurement.
func (n *Node) ResetCPUWindow() { n.host.CPU.ResetWindows() }
