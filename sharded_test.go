package juggler

// The sharded receive datapath's determinism contract, checked end to
// end: `-shards N` must be byte-identical to `-shards 1` — for every
// seed, every reassembly backend, any sweep width, with and without the
// adaptive controller, for the rendered table AND the exported telemetry
// artifacts, and for the chaos catalog (whose closed-loop scenarios
// ignore the lane count entirely; the flag must still never change their
// reports).

import (
	"bytes"
	"testing"

	"juggler/internal/experiments"
	"juggler/internal/reasm"
	"juggler/internal/sim"
	"juggler/internal/sweep"
	"juggler/internal/telemetry"
	"juggler/internal/testbed"
)

// shardedTable renders one quick shardedrx run.
func shardedTable(t *testing.T, seed int64, bk reasm.Kind, shards, workers int, adapt bool) []byte {
	t.Helper()
	tbl := experiments.Run("shardedrx", experiments.Options{
		Seed: seed, Quick: true, Workers: workers, Shards: shards,
		Backend: bk, Adapt: adapt,
	})
	if tbl == nil {
		t.Fatal("experiment shardedrx not registered")
	}
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	return buf.Bytes()
}

// TestShardedMatchesSerial sweeps the full matrix: two seeds, all four
// reassembly backends, lane counts 1/2/4/8, sweep widths 1 and 8. The
// one-lane run is the byte-exact serial reference; every other cell must
// reproduce it exactly. A second pass repeats the lane sweep with the
// per-queue adapt controllers attached (their retunes are part of the
// deterministic output).
func TestShardedMatchesSerial(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		for _, bk := range reasm.Kinds() {
			ref := shardedTable(t, seed, bk, 1, 1, false)
			if len(ref) == 0 {
				t.Fatalf("seed %d backend %v: empty serial table", seed, bk)
			}
			for _, shards := range []int{2, 4, 8} {
				for _, workers := range []int{1, 8} {
					got := shardedTable(t, seed, bk, shards, workers, false)
					if !bytes.Equal(ref, got) {
						t.Errorf("seed %d backend %v: table differs at -shards %d -j %d:\n--- serial ---\n%s--- sharded ---\n%s",
							seed, bk, shards, workers, ref, got)
					}
				}
			}
		}
		// Adaptive pass: one backend suffices — the controller sits above
		// the reassembly layer, and the backend matrix above already
		// pinned that layer.
		ref := shardedTable(t, seed, reasm.KindSegList, 1, 1, true)
		for _, shards := range []int{2, 4, 8} {
			if got := shardedTable(t, seed, reasm.KindSegList, shards, 1, true); !bytes.Equal(ref, got) {
				t.Errorf("seed %d: -adapt table differs at -shards %d:\n--- serial ---\n%s--- sharded ---\n%s",
					seed, shards, ref, got)
			}
		}
	}
}

// TestShardedExportsMatchSerial compares the full telemetry artifact set
// — Perfetto trace, pcapng capture, Prometheus snapshot — between a
// one-lane and an eight-lane shardedrx run. The sink attaches to the
// coordinator sim (lane sims are private to their goroutines), so the
// exports describe the run's coordinator-side view; what the test pins is
// that the lane count leaks into none of it.
func TestShardedExportsMatchSerial(t *testing.T) {
	run := func(shards int) (table, trace, pcap, prom []byte) {
		t.Helper()
		var sink *telemetry.Sink
		o := experiments.Options{Seed: 7, Quick: true, Shards: shards}
		o.AttachTelemetry = func(s *sim.Sim) {
			sink = telemetry.New(s, telemetry.Options{EventCap: 1 << 14})
		}
		tbl := experiments.Run("shardedrx", o)
		if tbl == nil {
			t.Fatal("experiment shardedrx not registered")
		}
		var tb bytes.Buffer
		tbl.Fprint(&tb)
		if sink == nil {
			t.Fatalf("no telemetry sink attached (shards=%d)", shards)
		}
		var tr, pc, mb bytes.Buffer
		if err := sink.WriteTrace(&tr); err != nil {
			t.Fatalf("WriteTrace: %v", err)
		}
		if err := sink.WritePcap(&pc); err != nil {
			t.Fatalf("WritePcap: %v", err)
		}
		if err := sink.Metrics.WriteProm(&mb); err != nil {
			t.Fatalf("WriteProm: %v", err)
		}
		return tb.Bytes(), tr.Bytes(), pc.Bytes(), mb.Bytes()
	}

	st, str, spc, spm := run(1)
	pt, ptr, ppc, ppm := run(8)
	if len(st) == 0 {
		t.Fatal("empty serial table")
	}
	if !bytes.Equal(st, pt) {
		t.Errorf("table differs between -shards 1 and -shards 8:\n--- serial ---\n%s--- sharded ---\n%s", st, pt)
	}
	if !bytes.Equal(str, ptr) {
		t.Errorf("trace-event JSON differs between -shards 1 and -shards 8 (%d vs %d bytes)", len(str), len(ptr))
	}
	if !bytes.Equal(spc, ppc) {
		t.Errorf("pcapng capture differs between -shards 1 and -shards 8 (%d vs %d bytes)", len(spc), len(ppc))
	}
	if !bytes.Equal(spm, ppm) {
		t.Errorf("metrics snapshot differs between -shards 1 and -shards 8 (%d vs %d bytes)", len(spm), len(ppm))
	}
}

// TestShardedChaosRehashMatchesSerial runs the chaos catalog's RSS-rehash
// scenario — the serial stack's mid-transfer indirection-table rewrite,
// the closest closed-loop cousin of the sharded handoff — with the
// adaptive controller attached, at every -shards level. Chaos scenarios
// are closed-loop (TCP feedback through a shared egress leaves zero
// cross-lane lookahead) and run on the serial engine whatever the flag
// says; this test pins that contract: the reports must be byte-identical
// and clean at every level.
func TestShardedChaosRehashMatchesSerial(t *testing.T) {
	run := func(shards int) []byte {
		t.Helper()
		rep, err := experiments.RunChaosScenario("rehash", testbed.OffloadJuggler,
			experiments.Options{Seed: 5, Quick: true, Shards: shards, Adapt: true}, 1)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if rep.Failed() || rep.Completed < rep.Flows {
			var buf bytes.Buffer
			rep.Fprint(&buf)
			t.Fatalf("shards=%d: rehash scenario not clean:\n%s", shards, buf.String())
		}
		var buf bytes.Buffer
		rep.Fprint(&buf)
		return buf.Bytes()
	}
	ref := run(1)
	for _, shards := range []int{2, 4, 8} {
		if got := run(shards); !bytes.Equal(ref, got) {
			t.Errorf("rehash chaos report differs at -shards %d:\n--- serial ---\n%s--- sharded ---\n%s",
				shards, ref, got)
		}
	}
}

// TestEffectiveWorkersBudget pins the shared -j x -shards goroutine
// budget at the public API level: a sharded run re-budgets the sweep
// width so total goroutines stay at the -j request, and the 0/1 "serial"
// meanings of Workers survive unchanged.
func TestEffectiveWorkersBudget(t *testing.T) {
	cases := []struct {
		j, shards, want int
	}{
		{8, 4, 2},  // 2 points x 4 lanes = the 8 requested
		{8, 1, 8},  // unsharded: -j untouched
		{4, 8, 1},  // budget smaller than one point: floor at 1
		{1, 4, 1},  // serial sweep stays serial
		{3, 2, 1},  // floor division
		{16, 2, 8}, // even split
	}
	for _, c := range cases {
		if got := sweep.EffectiveWorkers(c.j, c.shards); got != c.want {
			t.Errorf("EffectiveWorkers(%d, %d) = %d, want %d", c.j, c.shards, got, c.want)
		}
	}
}
