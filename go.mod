module juggler

go 1.22
