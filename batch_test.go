package juggler

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"juggler/internal/experiments"
	"juggler/internal/reasm"
	"juggler/internal/sim"
	"juggler/internal/telemetry"
)

// TestBatchMatchesScalar is the batch pipeline's determinism contract
// checked end to end: handing the NAPI poll's drained batch to
// Offload.ReceiveBatch must produce byte-identical runs to the scalar
// per-packet Receive handoff (RXConfig.ScalarRx). The batch path defers
// only work that schedules no simulation events — deadline-queue
// re-files and the chaos probe — so the event sequence, and therefore
// every export, is required to be literally identical.
//
// Coverage: two seeds x all four reassembly backends on the public
// two-host apparatus (with drops and reordering so flush, hole and
// retransmit paths all fire), comparing the Perfetto trace, the pcapng
// capture and the metrics snapshot byte for byte.
func TestBatchMatchesScalar(t *testing.T) {
	backends := []string{"seglist", "batchsort", "bitmap", "ring"}
	for _, seed := range []int64{5, 9} {
		for _, backend := range backends {
			t.Run(fmt.Sprintf("seed=%d/backend=%s", seed, backend), func(t *testing.T) {
				run := func(scalar bool) (trace, pcap, prom []byte) {
					tn := DefaultTuning(Rate10G)
					tn.Backend = backend
					p := NewReorderPair(ReorderPairConfig{
						Seed:         seed,
						ReorderDelay: 250 * time.Microsecond,
						DropProb:     0.001,
						Tuning:       tn,
						Telemetry:    true,
						ScalarRx:     scalar,
					})
					p.AddBulkFlow(0)
					p.Run(8 * time.Millisecond)
					var tb, pb, mb bytes.Buffer
					if err := p.WriteTrace(&tb); err != nil {
						t.Fatalf("WriteTrace: %v", err)
					}
					if err := p.WritePcap(&pb); err != nil {
						t.Fatalf("WritePcap: %v", err)
					}
					if err := p.WriteMetrics(&mb); err != nil {
						t.Fatalf("WriteMetrics: %v", err)
					}
					return tb.Bytes(), pb.Bytes(), mb.Bytes()
				}

				st, sp, sm := run(true) // scalar reference
				bt, bp, bm := run(false)
				if len(st) == 0 || len(sp) == 0 || len(sm) == 0 {
					t.Fatalf("empty scalar export: trace=%d pcap=%d metrics=%d bytes",
						len(st), len(sp), len(sm))
				}
				if !bytes.Equal(st, bt) {
					t.Errorf("trace-event JSON differs between scalar and batch RX (%d vs %d bytes)", len(st), len(bt))
				}
				if !bytes.Equal(sp, bp) {
					t.Errorf("pcapng capture differs between scalar and batch RX (%d vs %d bytes)", len(sp), len(bp))
				}
				if !bytes.Equal(sm, bm) {
					t.Errorf("metrics snapshot differs between scalar and batch RX (%d vs %d bytes)", len(sm), len(bm))
				}
			})
		}
	}
}

// TestBatchMatchesScalarSweep extends the contract to the sweeping
// apparatus: a fig6 sweep run with the batched receive pipeline — serial
// AND on 8 workers — must render the same table and export the same
// telemetry artifacts as the scalar-RX serial reference. This is the
// batch analogue of TestParallelSweepDeterministic: the -j dimension
// proves the batch path introduced no scheduling coupling between
// concurrently-simulated points.
func TestBatchMatchesScalarSweep(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		run := func(scalar bool, workers int) (table, trace, pcap, prom []byte) {
			t.Helper()
			var sink *telemetry.Sink
			o := experiments.Options{Seed: seed, Quick: true, Workers: workers,
				Backend: reasm.KindSegList, ScalarRx: scalar}
			o.AttachTelemetry = func(s *sim.Sim) {
				sink = telemetry.New(s, telemetry.Options{EventCap: 1 << 14})
			}
			tbl := experiments.Run("fig6", o)
			if tbl == nil {
				t.Fatalf("experiment fig6 not registered")
			}
			var tb bytes.Buffer
			tbl.Fprint(&tb)
			if sink == nil {
				t.Fatalf("no telemetry sink attached (scalar=%v workers=%d)", scalar, workers)
			}
			var tr, pc, mb bytes.Buffer
			if err := sink.WriteTrace(&tr); err != nil {
				t.Fatalf("WriteTrace: %v", err)
			}
			if err := sink.WritePcap(&pc); err != nil {
				t.Fatalf("WritePcap: %v", err)
			}
			if err := sink.Metrics.WriteProm(&mb); err != nil {
				t.Fatalf("WriteProm: %v", err)
			}
			return tb.Bytes(), tr.Bytes(), pc.Bytes(), mb.Bytes()
		}

		rt, rtr, rpc, rpm := run(true, 1) // scalar serial reference
		if len(rt) == 0 || len(rtr) == 0 || len(rpc) == 0 || len(rpm) == 0 {
			t.Fatalf("seed %d: empty scalar reference: table=%d trace=%d pcap=%d metrics=%d bytes",
				seed, len(rt), len(rtr), len(rpc), len(rpm))
		}
		for _, workers := range []int{1, 8} {
			bt, btr, bpc, bpm := run(false, workers)
			if !bytes.Equal(rt, bt) {
				t.Errorf("seed %d: table differs between scalar -j 1 and batch -j %d:\n--- scalar ---\n%s--- batch ---\n%s",
					seed, workers, rt, bt)
			}
			if !bytes.Equal(rtr, btr) {
				t.Errorf("seed %d: trace-event JSON differs between scalar -j 1 and batch -j %d (%d vs %d bytes)",
					seed, workers, len(rtr), len(btr))
			}
			if !bytes.Equal(rpc, bpc) {
				t.Errorf("seed %d: pcapng capture differs between scalar -j 1 and batch -j %d (%d vs %d bytes)",
					seed, workers, len(rpc), len(bpc))
			}
			if !bytes.Equal(rpm, bpm) {
				t.Errorf("seed %d: metrics snapshot differs between scalar -j 1 and batch -j %d (%d vs %d bytes)",
					seed, workers, len(rpm), len(bpm))
			}
		}
	}
}
