package juggler

import (
	"strings"
	"testing"
	"time"
)

func TestDefaultTuningRuleOfThumb(t *testing.T) {
	// §5.2.1 rule of thumb: 52us at 10G, 13us at 40G.
	t10 := DefaultTuning(Rate10G)
	if t10.InseqTimeout < 50*time.Microsecond || t10.InseqTimeout > 55*time.Microsecond {
		t.Fatalf("10G inseq timeout = %v, want ~52us", t10.InseqTimeout)
	}
	t40 := DefaultTuning(Rate40G)
	if t40.InseqTimeout < 12*time.Microsecond || t40.InseqTimeout > 14*time.Microsecond {
		t.Fatalf("40G inseq timeout = %v, want ~13us", t40.InseqTimeout)
	}
}

func TestReorderPairHeadline(t *testing.T) {
	// The paper's headline result through the public API: with severe
	// reordering, vanilla loses throughput while Juggler holds line rate.
	run := func(stack Stack) Rate {
		tun := DefaultTuning(Rate10G)
		tun.OfoTimeout = 700 * time.Microsecond
		p := NewReorderPair(ReorderPairConfig{
			Rate: Rate10G, ReorderDelay: 500 * time.Microsecond,
			Receiver: stack, Tuning: tun, Seed: 42,
		})
		f := p.AddBulkFlow(0)
		p.Run(50 * time.Millisecond)
		f.Throughput() // reset the measurement window
		p.Run(100 * time.Millisecond)
		return f.Throughput()
	}
	jug := run(StackJuggler)
	van := run(StackVanilla)
	if jug < Rate10G*85/100 {
		t.Fatalf("juggler throughput %v, want near line rate", jug)
	}
	if van > jug*3/4 {
		t.Fatalf("vanilla %v should be well below juggler %v", van, jug)
	}
}

func TestReorderPairStats(t *testing.T) {
	p := NewReorderPair(ReorderPairConfig{Rate: Rate10G, Receiver: StackJuggler})
	p.AddBulkFlow(0)
	p.Run(30 * time.Millisecond)
	st := p.ReceiverStats()
	if st.BatchingMTUs < 8 {
		t.Fatalf("batching = %.1f MTUs, expected strong merging in-order", st.BatchingMTUs)
	}
	if st.RXCoreUtil <= 0 || st.AppCoreUtil <= 0 {
		t.Fatal("CPU utilizations should be positive")
	}
	if st.SegmentsIn == 0 || st.AcksSent == 0 {
		t.Fatal("TCP counters should be populated")
	}
}

func TestRPCStreamThroughAPI(t *testing.T) {
	p := NewReorderPair(ReorderPairConfig{Rate: Rate10G, Receiver: StackJuggler})
	r := p.AddRPCStream()
	for i := 0; i < 10; i++ {
		d := time.Duration(i) * time.Millisecond
		p.At(d, func() { r.Send(10 << 10) })
	}
	p.Run(50 * time.Millisecond)
	if r.Completed() != 10 {
		t.Fatalf("completed = %d", r.Completed())
	}
	if r.LatencyMedian() <= 0 || r.LatencyMedian() > 5*time.Millisecond {
		t.Fatalf("median latency %v implausible", r.LatencyMedian())
	}
	if r.LatencyP99() < r.LatencyMedian() {
		t.Fatal("p99 < median")
	}
}

func TestClusterPerPacketLB(t *testing.T) {
	c := NewCluster(ClusterConfig{LB: PerPacket, Stack: StackJuggler, Seed: 7})
	a := c.AddHost(0)
	b := c.AddHost(1)
	f := c.ConnectBulk(a, b, FlowOptions{})
	c.Run(20 * time.Millisecond)
	if f.Delivered() == 0 {
		t.Fatal("no bytes delivered across the cluster")
	}
	if f.OOOFraction() > 0.05 {
		t.Fatalf("OOO fraction %.2f: Juggler should hide per-packet spraying", f.OOOFraction())
	}
}

func TestClusterGuarantee(t *testing.T) {
	c := NewCluster(ClusterConfig{
		Spines: 1, PriorityQueues: true, Stack: StackJuggler,
		ECNThresholdBytes: 400 << 10, QueueBytes: 4 << 20, Seed: 3,
		Tuning: Tuning{OfoTimeout: 400 * time.Microsecond},
	})
	s1, s2 := c.AddHost(0), c.AddHost(0)
	r1, r2 := c.AddHost(1), c.AddHost(1)
	opt := FlowOptions{ECN: true, MaxWindow: 2 << 20}
	target := c.ConnectBulk(s1, r1, opt)
	for i := 0; i < 7; i++ {
		c.ConnectBulk(s2, r2, opt)
	}
	c.Run(300 * time.Millisecond) // converge to fair share (~5G)
	c.Guarantee(target, 20*Gbps)
	c.Run(400 * time.Millisecond)
	target.Throughput() // reset window
	c.Run(100 * time.Millisecond)
	got := target.Throughput()
	if got < 17*Gbps || got > 23*Gbps {
		t.Fatalf("guaranteed flow at %v, want ~20Gb/s", got)
	}
}

func TestExperimentRegistryThroughAPI(t *testing.T) {
	ids := Experiments()
	if len(ids) < 12 {
		t.Fatalf("only %d experiments registered: %v", len(ids), ids)
	}
	for _, want := range []string{"fig1", "fig9", "fig10", "fig12", "fig13",
		"fig14", "fig15", "fig16", "fig18", "fig20", "latency", "lossofo"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("experiment %q missing from registry", want)
		}
	}
	if RunExperiment("no-such-id", 1, true) != nil {
		t.Fatal("unknown experiment should return nil")
	}
	if DescribeExperiment("fig12") == "" {
		t.Fatal("description missing")
	}
}

func TestRunExperimentProducesReport(t *testing.T) {
	rep := RunExperiment("latency", 1, true)
	if rep == nil || len(rep.Rows) != 2 {
		t.Fatalf("latency report = %+v", rep)
	}
	var sb strings.Builder
	rep.Fprint(&sb)
	out := sb.String()
	if !strings.Contains(out, "latency") || !strings.Contains(out, "juggler") {
		t.Fatalf("report rendering wrong:\n%s", out)
	}
}

func TestStackAndPolicyStrings(t *testing.T) {
	if StackJuggler.String() != "juggler" || StackVanilla.String() != "vanilla" {
		t.Fatal("stack names wrong")
	}
	if PerPacket.String() != "perpacket" || ECMP.String() != "ecmp" {
		t.Fatal("policy names wrong")
	}
	if Rate40G.String() != "40Gb/s" {
		t.Fatalf("rate string = %q", Rate40G.String())
	}
}

func TestReportWriteCSV(t *testing.T) {
	rep := &Report{ID: "x", Columns: []string{"a", "b"}, Rows: [][]string{{"1", "2"}, {"3", "4"}}}
	var sb strings.Builder
	if err := rep.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3,4\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}
