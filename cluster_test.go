package juggler

import (
	"strings"
	"testing"
	"time"
)

func TestClusterDefaults(t *testing.T) {
	c := NewCluster(ClusterConfig{})
	a, b := c.AddHost(0), c.AddHost(1)
	f := c.ConnectBulk(a, b, FlowOptions{})
	c.Run(10 * time.Millisecond)
	if f.Delivered() == 0 {
		t.Fatal("default cluster should pass traffic")
	}
}

func TestClusterFlowletPolicy(t *testing.T) {
	c := NewCluster(ClusterConfig{LB: Flowlet, Stack: StackJuggler, Seed: 5})
	a, b := c.AddHost(0), c.AddHost(1)
	f := c.ConnectBulk(a, b, FlowOptions{})
	c.Run(20 * time.Millisecond)
	if f.Delivered() == 0 {
		t.Fatal("flowlet cluster should pass traffic")
	}
	if f.OOOFraction() > 0.05 {
		t.Fatalf("flowlets should cause little reordering, got %.2f", f.OOOFraction())
	}
}

func TestClusterBackgroundTraffic(t *testing.T) {
	c := NewCluster(ClusterConfig{LB: PerPacket, Stack: StackJuggler, Seed: 5})
	a, b := c.AddHost(0), c.AddHost(1)
	c.AddBackground(0, 1, 10*Gbps)
	f := c.ConnectBulk(a, b, FlowOptions{})
	c.Run(30 * time.Millisecond)
	if f.Delivered() == 0 {
		t.Fatal("foreground flow should survive background load")
	}
	// Real background queueing: reordering happens at the fabric, yet the
	// juggler stack hides it.
	if f.OOOFraction() > 0.05 {
		t.Fatalf("OOO fraction %.3f under background load", f.OOOFraction())
	}
}

func TestClusterRPCAndPrioritizeTail(t *testing.T) {
	c := NewCluster(ClusterConfig{
		Spines: 1, PriorityQueues: true, Stack: StackJuggler,
		Tuning: Tuning{OfoTimeout: 400 * time.Microsecond}, Seed: 9,
	})
	a, b := c.AddHost(0), c.AddHost(1)
	r := c.ConnectRPC(a, b, FlowOptions{})
	r.PrioritizeTail(1 << 20) // whole messages ride high priority
	for i := 0; i < 5; i++ {
		d := time.Duration(i) * time.Millisecond
		c.At(d, func() { r.Send(64 << 10) })
	}
	c.Run(50 * time.Millisecond)
	if r.Completed() != 5 {
		t.Fatalf("completed %d of 5", r.Completed())
	}
	r.PrioritizeTail(0) // restore static priority: still functional
	r.Send(64 << 10)
	c.Run(20 * time.Millisecond)
	if r.Completed() != 6 {
		t.Fatalf("completed %d of 6", r.Completed())
	}
}

func TestRPCClosedLoopThroughAPI(t *testing.T) {
	p := NewReorderPair(ReorderPairConfig{Rate: Rate10G, Receiver: StackJuggler})
	r := p.AddRPCStream()
	n := 0
	r.OnComplete(func() {
		n++
		if n < 20 {
			r.Send(10 << 10)
		}
	})
	r.Send(10 << 10)
	p.Run(100 * time.Millisecond)
	if r.Completed() != 20 {
		t.Fatalf("closed loop completed %d of 20", r.Completed())
	}
}

func TestTraceThroughAPI(t *testing.T) {
	p := NewReorderPair(ReorderPairConfig{
		Rate: Rate10G, ReorderDelay: 300 * time.Microsecond,
		Receiver: StackJuggler,
		Tuning:   Tuning{OfoTimeout: 500 * time.Microsecond},
	})
	p.EnableTrace(256)
	p.AddBulkFlow(0)
	p.Run(5 * time.Millisecond)
	var sb strings.Builder
	sum := p.DumpTrace(&sb)
	if !strings.Contains(sum, "flush=") {
		t.Fatalf("trace summary %q should report flushes", sum)
	}
	if !strings.Contains(sb.String(), "flush") {
		t.Fatal("trace dump empty")
	}
}

func TestNodeStatsAndCPUWindow(t *testing.T) {
	c := NewCluster(ClusterConfig{Stack: StackJuggler, Seed: 2})
	a, b := c.AddHost(0), c.AddHost(1)
	c.ConnectBulk(a, b, FlowOptions{})
	c.Run(10 * time.Millisecond)
	b.ResetCPUWindow()
	c.Run(10 * time.Millisecond)
	st := b.Stats()
	if st.RXCoreUtil <= 0 || st.BatchingMTUs <= 1 {
		t.Fatalf("stats implausible: %+v", st)
	}
}
