// Quickstart: the paper's headline result in thirty lines.
//
// Two hosts are connected through a switch that sprays every packet onto
// one of two paths, the second delayed by 500us — severe, systematic
// reordering. A vanilla (standard GRO) receiver collapses: batching breaks
// and TCP misreads reordering as loss. A Juggler receiver restores order
// at the GRO layer and holds line rate.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"juggler"
)

func main() {
	const reorder = 500 * time.Microsecond

	for _, stack := range []juggler.Stack{juggler.StackVanilla, juggler.StackJuggler} {
		tuning := juggler.DefaultTuning(juggler.Rate10G)
		// ofo_timeout must cover the reordering delay (§5.2.1).
		tuning.OfoTimeout = 700 * time.Microsecond

		pair := juggler.NewReorderPair(juggler.ReorderPairConfig{
			Rate:         juggler.Rate10G,
			ReorderDelay: reorder,
			Receiver:     stack,
			Tuning:       tuning,
			Seed:         42,
		})
		flow := pair.AddBulkFlow(0)

		pair.Run(50 * time.Millisecond) // let slow start finish
		flow.Throughput()               // reset the measurement window
		pair.Run(200 * time.Millisecond)

		stats := pair.ReceiverStats()
		fmt.Printf("%-8s  throughput %8v   batching %5.1f MTUs/seg   OOO at TCP %5.1f%%\n",
			stack, flow.Throughput(), stats.BatchingMTUs, flow.OOOFraction()*100)
	}
	fmt.Println("\nJuggler hides the reordering from TCP entirely; vanilla GRO cannot.")
}
