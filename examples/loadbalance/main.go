// Fine-grained network load balancing (§2.2, §5.3.2).
//
// Eight servers under one ToR send all-to-all RPC traffic to eight clients
// under another, across a two-spine 40G Clos. The ToR uplinks balance load
// per flow (ECMP), per TSO burst (Presto-like), or per packet. ECMP's hash
// collisions build deep queues that inflate the tail latency of small
// RPCs; per-packet spraying keeps the fabric balanced — and is only safe
// because the Juggler receivers absorb the reordering it creates.
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"time"

	"juggler"
)

func main() {
	const (
		largeRPC = 1 << 20 // 1MB
		smallRPC = 150
		load     = 0.75 // of the 80G bisection
	)

	for _, policy := range []juggler.LoadBalancing{juggler.ECMP, juggler.PerTSO, juggler.PerPacket} {
		c := juggler.NewCluster(juggler.ClusterConfig{
			LB:    policy,
			Stack: juggler.StackJuggler,
			Tuning: juggler.Tuning{
				OfoTimeout: 300 * time.Microsecond,
			},
			Seed: 11,
		})
		var servers, clients []*juggler.Node
		for i := 0; i < 4; i++ {
			servers = append(servers, c.AddHost(0))
			clients = append(clients, c.AddHost(1))
		}

		// All-to-all large RPCs from servers 0-1, small RPCs from 2-3,
		// multiplexed over several long-lived sessions per pair as in the
		// paper's generator.
		const sessions = 8
		var large, small []*juggler.RPCStream
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				for k := 0; k < sessions; k++ {
					large = append(large, c.ConnectRPC(servers[i], clients[j], juggler.FlowOptions{MaxWindow: 2 << 20}))
				}
				small = append(small, c.ConnectRPC(servers[2+i], clients[2+j], juggler.FlowOptions{}))
			}
		}

		// Open-loop Poisson-ish generation: large RPCs carry the load,
		// small RPCs probe the latency.
		largeRate := load * 80e9 / 8 / float64(len(large)) / float64(largeRPC) // RPCs/s per stream
		largeGap := time.Duration(float64(time.Second) / largeRate)
		for i, r := range large {
			r := r
			var tick func()
			tick = func() {
				r.Send(largeRPC)
				c.At(largeGap, tick)
			}
			c.At(time.Duration(i)*largeGap/time.Duration(len(large)), tick)
		}
		for i, r := range small {
			r := r
			var tick func()
			tick = func() {
				r.Send(smallRPC)
				c.At(100*time.Microsecond, tick)
			}
			c.At(time.Duration(i)*25*time.Microsecond, tick)
		}

		c.Run(300 * time.Millisecond)

		var smallP99, largeP99 time.Duration
		for _, r := range small {
			if p := r.LatencyP99(); p > smallP99 {
				smallP99 = p
			}
		}
		for _, r := range large {
			if p := r.LatencyP99(); p > largeP99 {
				largeP99 = p
			}
		}
		fmt.Printf("%-10s  small RPC p99 %8v   large RPC p99 %8v\n",
			policy, smallP99.Round(time.Microsecond), largeP99.Round(10*time.Microsecond))
	}
	fmt.Println("\nFiner-grained balancing keeps queues — and tails — small; Juggler makes it safe.")
}
