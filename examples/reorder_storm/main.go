// Adversarial stress: many concurrent flows, severe reordering, losses.
//
// 64 flows share a 10G link through the delay switch with 1ms(!) of
// reordering and 0.1% random drops — far beyond anything a sane datacenter
// produces. The point of the exercise is §3.3/§5.2.2: even here, Juggler
// only ever tracks a handful of flows at a time (TSO burstiness keeps the
// active list tiny), a small gro_table suffices, and the stack keeps its
// throughput while hiding virtually all reordering from TCP.
//
//	go run ./examples/reorder_storm
package main

import (
	"fmt"
	"time"

	"juggler"
)

func main() {
	const (
		flows   = 64
		reorder = time.Millisecond
	)
	tuning := juggler.DefaultTuning(juggler.Rate10G)
	tuning.OfoTimeout = 1200 * time.Microsecond // cover tau
	tuning.MaxFlows = 64                        // §5.2.2: enough for 1ms of reordering

	pair := juggler.NewReorderPair(juggler.ReorderPairConfig{
		Rate:         juggler.Rate10G,
		ReorderDelay: reorder,
		DropProb:     0.001,
		Receiver:     juggler.StackJuggler,
		Tuning:       tuning,
		Seed:         9,
	})

	fs := make([]*juggler.Flow, flows)
	for i := range fs {
		fs[i] = pair.AddBulkFlow(juggler.Rate10G / flows)
	}

	pair.Run(100 * time.Millisecond)
	for _, f := range fs {
		f.Throughput()
	}

	maxActive := 0
	var poll func()
	poll = func() {
		if a := pair.ReceiverStats().ActiveFlows; a > maxActive {
			maxActive = a
		}
		pair.At(100*time.Microsecond, poll)
	}
	pair.At(0, poll)
	pair.Run(400 * time.Millisecond)

	var total juggler.Rate
	var retrans int64
	for _, f := range fs {
		total += f.Throughput()
		retrans += f.Retransmits()
	}
	st := pair.ReceiverStats()
	ooo := float64(st.OOOSegments) / float64(st.SegmentsIn) * 100

	fmt.Printf("flows                 %d concurrent, %v reordering, 0.1%% drops\n", flows, reorder)
	fmt.Printf("aggregate throughput  %v of 10Gb/s\n", total)
	fmt.Printf("OOO segments at TCP   %.2f%% of %d\n", ooo, st.SegmentsIn)
	fmt.Printf("batching extent       %.1f MTUs/segment\n", st.BatchingMTUs)
	fmt.Printf("peak active flows     %d (of %d connections; table bound %d)\n",
		maxActive, flows, tuning.MaxFlows)
	fmt.Printf("retransmitted pkts    %d (losses recovered through the storm)\n", retrans)
}
