// pFabric-style dynamic flow prioritization (§2.1).
//
// pFabric achieves near-optimal flow completion times by raising a flow's
// scheduling priority as it nears completion (Shortest Remaining
// Processing Time). With only two priority classes, the approximation is:
// mark a message's packets high priority once fewer than a threshold of
// bytes remain. The catch — changing a flow's priority mid-stream reorders
// its packets at every strict-priority queue, so the receiver must be
// reordering resilient.
//
// Four bulk flows congest a 40G priority dumbbell while a latency-
// sensitive client issues 2MB messages closed loop. With static (low)
// priority, the messages crawl behind the bulk queue. With SRPT-style tail
// prioritization and Juggler receivers they finish far faster; with
// vanilla receivers the induced reordering eats most of the benefit.
//
//	go run ./examples/dynamic_priority
package main

import (
	"fmt"
	"time"

	"juggler"
)

func main() {
	const (
		msgSize   = 2 << 20 // 2MB messages
		threshold = 2 << 20 // whole message rides high priority: clean SRPT-2 class
	)
	run := func(stack juggler.Stack, srpt bool) (time.Duration, int64) {
		c := juggler.NewCluster(juggler.ClusterConfig{
			Spines:            1,
			PriorityQueues:    true,
			ECNThresholdBytes: 400 << 10,
			QueueBytes:        4 << 20,
			Stack:             stack,
			Tuning:            juggler.Tuning{OfoTimeout: 400 * time.Microsecond},
			Seed:              13,
		})
		bulkSrc, rpcSrc := c.AddHost(0), c.AddHost(0)
		bulkDst, rpcDst := c.AddHost(1), c.AddHost(1)
		opts := juggler.FlowOptions{ECN: true, MaxWindow: 2 << 20}
		for i := 0; i < 4; i++ {
			c.ConnectBulk(bulkSrc, bulkDst, opts)
		}
		stream := c.ConnectRPC(rpcSrc, rpcDst, opts)
		if srpt {
			stream.PrioritizeTail(threshold)
		}
		c.Run(100 * time.Millisecond) // bulk flows fill the bottleneck
		stream.OnComplete(func() { stream.Send(msgSize) })
		stream.Send(msgSize)
		c.Run(400 * time.Millisecond)
		return stream.LatencyMedian().Round(10 * time.Microsecond), stream.Completed()
	}

	fmt.Println("2MB message completion against 4 bulk flows on a 40G priority dumbbell:")
	for _, stack := range []juggler.Stack{juggler.StackJuggler, juggler.StackVanilla} {
		static, n1 := run(stack, false)
		srpt, n2 := run(stack, true)
		fmt.Printf("  %-8s  static-low: median %8v (%3d msgs)   srpt-marked: median %8v (%3d msgs)\n",
			stack, static, n1, srpt, n2)
	}
	fmt.Println("\nDynamic prioritization needs a reordering-resilient receiver to pay off.")
}
