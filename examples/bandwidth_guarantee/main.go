// Bandwidth guarantee by dynamic packet prioritization (§2.1, §5.3.1).
//
// Eight flows share a 40G bottleneck with two-level strict-priority
// queues; every flow starts at low priority and gets its ~5G fair share.
// At t=0 one flow is given a 20G guarantee: a passive sender module starts
// marking its packets high priority with probability p, adapting
//
//	p <- p + alpha*(Rt - Rm)
//
// No rate limiter, no hypervisor layer — but mixing priorities reorders
// the flow's packets, so the receiver must be reordering resilient. Run
// this example twice (it does so itself) to see the guarantee hold with
// Juggler and fail with a vanilla receiver.
//
//	go run ./examples/bandwidth_guarantee
package main

import (
	"fmt"
	"time"

	"juggler"
)

func main() {
	const guarantee = 20 * juggler.Gbps

	for _, stack := range []juggler.Stack{juggler.StackJuggler, juggler.StackVanilla} {
		c := juggler.NewCluster(juggler.ClusterConfig{
			Spines:            1, // one stage-2 switch: the Figure 17 dumbbell
			PriorityQueues:    true,
			ECNThresholdBytes: 400 << 10, // DCTCP-style shallow queues
			QueueBytes:        4 << 20,
			Stack:             stack,
			Tuning:            juggler.Tuning{OfoTimeout: 400 * time.Microsecond},
			Seed:              21,
		})
		sender1, sender2 := c.AddHost(0), c.AddHost(0)
		receiver1, receiver2 := c.AddHost(1), c.AddHost(1)

		opts := juggler.FlowOptions{ECN: true, MaxWindow: 2 << 20}
		target := c.ConnectBulk(sender1, receiver1, opts)
		for i := 0; i < 7; i++ {
			c.ConnectBulk(sender2, receiver2, opts) // antagonists
		}

		c.Run(300 * time.Millisecond) // converge to fair share
		fmt.Printf("\n%s receiver:\n", stack)
		target.Throughput()
		c.Run(50 * time.Millisecond)
		fmt.Printf("  before guarantee: %v (fair share of 40G across 8 flows)\n", target.Throughput())

		c.Guarantee(target, guarantee) // t = 0
		for i := 1; i <= 5; i++ {
			c.Run(100 * time.Millisecond)
			fmt.Printf("  t=%3dms: target flow at %v (guarantee %v)\n",
				i*100, target.Throughput(), guarantee)
		}
	}
}
